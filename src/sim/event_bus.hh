/**
 * @file
 * Unified compile-time event bus (DESIGN.md §13).
 *
 * Every protocol-visible occurrence in the channel scheduler and the
 * DRAM-cache front-end used to be announced three times: a
 * TSIM_TRACE_EVENT macro, a TSIM_CHECK_EVENT macro with the same
 * argument list retyped, and a handful of inline statistics updates.
 * The bus collapses the three into one emission:
 *
 *     emit(*this, ActRdIssuedEv{.tick = now, .addr = req.addr, ...});
 *
 * An event is a plain struct that names its TraceKind, carries the
 * record payload (tick/addr/bank/aux/extra), and optionally defines
 * stats(Owner&) applying the statistics that belong to the site.
 * Stats-only occurrences set `static constexpr bool traced = false`
 * and skip the payload entirely.
 *
 * Delivery fans out over a compile-time subscriber list. Each
 * subscriber carries its own `enabled` constant wired to the existing
 * TDRAM_TRACE / TDRAM_CHECK gates plus the new TDRAM_STATS gate, so
 * each consumer compiles out independently — `if constexpr` discards
 * the whole delivery including argument use, which the nm gate tests
 * (tests/check_trace_gate.sh, tests/check_protocol_gate.sh,
 * tests/check_stats_gate.sh) assert on the compiled object.
 *
 * The owner is duck-typed: trace delivery needs a `traceBuf` member
 * (TraceBuffer*), check delivery needs `checker` (ProtocolChecker*)
 * and `checkChannel`, stats delivery needs whatever the event's
 * stats() method touches. Delivery order is stats, then trace, then
 * check — fixed so floating-point accumulation order per site is
 * deterministic and golden outputs stay byte-identical.
 */

#ifndef TSIM_SIM_EVENT_BUS_HH
#define TSIM_SIM_EVENT_BUS_HH

#include "check/check.hh"
#include "stats/stats.hh"
#include "trace/trace.hh"

namespace tsim
{

/** True unless the event opts out with `traced = false`. */
template <typename Ev>
constexpr bool
eventTraced()
{
    if constexpr (requires { Ev::traced; })
        return Ev::traced;
    else
        return true;
}

/** Applies the event's stats() updates to the owner. */
struct StatsSubscriber
{
    static constexpr bool enabled = statsCompiledIn();

    template <typename Owner, typename Ev>
    static void
    deliver(Owner &owner, const Ev &ev)
    {
        if constexpr (requires { ev.stats(owner); })
            ev.stats(owner);
    }
};

/** Records the event into the owner's TraceBuffer (if attached). */
struct TraceSubscriber
{
    static constexpr bool enabled = traceCompiledIn();

    template <typename Owner, typename Ev>
    static void
    deliver(Owner &owner, const Ev &ev)
    {
        if constexpr (eventTraced<Ev>()) {
            if (owner.traceBuf) {
                owner.traceBuf->record(Ev::kind, ev.tick, ev.addr,
                                       ev.bank, ev.aux, ev.extra);
            }
        }
    }
};

/** Feeds the event to the owner's inline ProtocolChecker (if any). */
struct CheckSubscriber
{
    static constexpr bool enabled = checkCompiledIn();

    template <typename Owner, typename Ev>
    static void
    deliver(Owner &owner, const Ev &ev)
    {
        if constexpr (eventTraced<Ev>()) {
            if (owner.checker) {
                owner.checker->onEvent(owner.checkChannel, Ev::kind,
                                       ev.tick, ev.addr, ev.bank,
                                       ev.aux, ev.extra);
            }
        }
    }
};

/**
 * Compile-time list of subscribers: dispatch() folds over them in
 * order, discarding disabled ones before instantiation so no symbol
 * of a gated-off consumer survives into the object file.
 */
template <typename... Subs>
struct SubscriberList
{
    template <typename Owner, typename Ev>
    static void
    dispatch(Owner &owner, const Ev &ev)
    {
        (deliverOne<Subs>(owner, ev), ...);
    }

  private:
    template <typename Sub, typename Owner, typename Ev>
    static void
    deliverOne(Owner &owner, const Ev &ev)
    {
        if constexpr (Sub::enabled)
            Sub::deliver(owner, ev);
    }
};

/** The production fan-out: stats, then trace, then check. */
using BusSubscribers =
    SubscriberList<StatsSubscriber, TraceSubscriber, CheckSubscriber>;

/** Emit one event from @p owner to every compiled-in subscriber. */
template <typename Ev, typename Owner>
inline void
emit(Owner &owner, const Ev &ev)
{
    BusSubscribers::dispatch(owner, ev);
}

} // namespace tsim

#endif // TSIM_SIM_EVENT_BUS_HH
