/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single EventQueue drives every simulated component. Components
 * schedule callbacks at absolute ticks; the queue executes them in
 * (tick, insertion-order) order, which makes simulation fully
 * deterministic.
 */

#ifndef TSIM_SIM_EVENT_QUEUE_HH
#define TSIM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/logging.hh"
#include "sim/ticks.hh"

namespace tsim
{

/**
 * The global simulation event queue.
 *
 * Events are arbitrary callables. Scheduling in the past is a
 * simulator bug (panic). Ties are broken by insertion order so that
 * simulation is deterministic and independent of container internals.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulation time. */
    Tick curTick() const { return _curTick; }

    /** Schedule @p cb to run at absolute time @p when. */
    void
    schedule(Tick when, Callback cb)
    {
        panic_if(when < _curTick,
                 "scheduling in the past (when=%llu cur=%llu)",
                 (unsigned long long)when, (unsigned long long)_curTick);
        _events.push(Event{when, _nextSeq++, std::move(cb)});
    }

    /** Schedule @p cb to run @p delay ticks from now. */
    void
    scheduleIn(Tick delay, Callback cb)
    {
        schedule(_curTick + delay, std::move(cb));
    }

    /** True if no events remain. */
    bool empty() const { return _events.empty(); }

    /** Number of pending events. */
    std::size_t size() const { return _events.size(); }

    /** Time of the next pending event (maxTick if none). */
    Tick
    nextEventTick() const
    {
        return _events.empty() ? maxTick : _events.top().when;
    }

    /**
     * Run until the queue drains or @p limit is reached (events
     * scheduled exactly at @p limit still execute).
     *
     * @return number of events executed.
     */
    std::uint64_t
    run(Tick limit = maxTick)
    {
        std::uint64_t executed = 0;
        while (!_events.empty() && _events.top().when <= limit) {
            // Move the event out before popping so the callback may
            // schedule new events (including at the current tick).
            Event ev = std::move(const_cast<Event &>(_events.top()));
            _events.pop();
            _curTick = ev.when;
            ev.cb();
            ++executed;
        }
        if (_curTick < limit && limit != maxTick)
            _curTick = limit;
        return executed;
    }

    /** Execute exactly one event, if any. @return true if one ran. */
    bool
    step()
    {
        if (_events.empty())
            return false;
        Event ev = std::move(const_cast<Event &>(_events.top()));
        _events.pop();
        _curTick = ev.when;
        ev.cb();
        return true;
    }

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> _events;
    Tick _curTick = 0;
    std::uint64_t _nextSeq = 0;
};

/**
 * Base class for named simulated components bound to an event queue.
 */
class SimObject
{
  public:
    SimObject(EventQueue &eq, std::string name)
        : _eq(eq), _name(std::move(name))
    {}

    virtual ~SimObject() = default;

    const std::string &name() const { return _name; }
    EventQueue &eventQueue() const { return _eq; }
    Tick curTick() const { return _eq.curTick(); }

  protected:
    EventQueue &_eq;

  private:
    std::string _name;
};

} // namespace tsim

#endif // TSIM_SIM_EVENT_QUEUE_HH
