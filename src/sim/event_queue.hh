/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single EventQueue drives every simulated component. Components
 * schedule callbacks at absolute ticks; the queue executes them in
 * (tick, insertion-order) order, which makes simulation fully
 * deterministic.
 *
 * The implementation is built for throughput — the whole reproduction
 * replays dozens of (design x workload) simulations through this one
 * hot loop:
 *
 *  - Callbacks are InlineFunction (see inline_function.hh): the
 *    common component captures live inside the event record, so
 *    schedule() performs no heap allocation on the fast path.
 *  - Event records live in a pooled, free-listed arena addressed by
 *    32-bit indices; pop() recycles records instead of freeing them.
 *  - The pending set is a two-level structure: a timing wheel of
 *    near-future buckets (one bucket spans `bucketSpan` ticks, the
 *    wheel covers `horizonTicks`) absorbs the dominant short-horizon
 *    events with O(1) append, while far-future events (refresh
 *    periods, watchdogs) wait in a min-heap of POD (tick, seq, index)
 *    entries and migrate into the wheel as time advances.
 *
 * Determinism contract: execution order is exactly ascending
 * (tick, insertion-seq), identical to a single sorted list. Bucket
 * contents are sorted on collection and late insertions below the
 * wheel frontier go through a sorted ready list, so the structure is
 * an invisible optimization.
 */

#ifndef TSIM_SIM_EVENT_QUEUE_HH
#define TSIM_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/inline_function.hh"
#include "sim/logging.hh"
#include "sim/ticks.hh"

namespace tsim
{

/**
 * The global simulation event queue.
 *
 * Events are arbitrary callables. Scheduling in the past is a
 * simulator bug (panic). Ties are broken by insertion order so that
 * simulation is deterministic and independent of container internals.
 */
class EventQueue
{
  public:
    using Callback = InlineFunction;

    EventQueue()
    {
        _pool.reserve(initialPoolCapacity);
        _far.reserve(64);
        _scratch.reserve(64);
    }

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulation time. */
    Tick curTick() const { return _curTick; }

    /** Schedule @p cb to run at absolute time @p when. */
    void
    schedule(Tick when, Callback cb)
    {
        panic_if(when < _curTick,
                 "scheduling in the past (when=%llu cur=%llu)",
                 (unsigned long long)when, (unsigned long long)_curTick);
        const std::uint32_t idx = allocRec(when, std::move(cb));
        if (when < _wheelMin) {
            // The event's bucket was already collected; merge it into
            // the sorted ready list (same-tick events land after
            // earlier insertions because seq is larger).
            readyInsert(idx);
        } else if (when - _wheelMin < horizonTicks) {
            bucketAppend(idx);
        } else {
            farPush(idx);
        }
        ++_size;
    }

    /** Schedule @p cb to run @p delay ticks from now. */
    void
    scheduleIn(Tick delay, Callback cb)
    {
        schedule(_curTick + delay, std::move(cb));
    }

    /** True if no events remain. */
    bool empty() const { return _size == 0; }

    /** Number of pending events. */
    std::size_t size() const { return _size; }

    /** Time of the next pending event (maxTick if none). */
    Tick
    nextEventTick() const
    {
        auto *self = const_cast<EventQueue *>(this);
        return self->prepare() ? _pool[_readyHead].when : maxTick;
    }

    /**
     * Run until the queue drains or @p limit is reached (events
     * scheduled exactly at @p limit still execute).
     *
     * @return number of events executed.
     */
    std::uint64_t
    run(Tick limit = maxTick)
    {
        std::uint64_t executed = 0;
        while (prepare() && _pool[_readyHead].when <= limit) {
            popAndRun();
            ++executed;
        }
        if (_curTick < limit && limit != maxTick)
            _curTick = limit;
        return executed;
    }

    /**
     * Run every event strictly before @p bound, then advance the
     * clock to @p bound. The window-based shard engine uses this as
     * its phase primitive: a window [k*W, (k+1)*W) owns the ticks up
     * to but excluding its upper bound, so an event scheduled exactly
     * at a window boundary executes in the *next* window — the one
     * whose half-open interval starts at that tick. (Contrast with
     * run(), whose limit is inclusive.)
     *
     * @return number of events executed.
     */
    std::uint64_t
    runBefore(Tick bound)
    {
        std::uint64_t executed = 0;
        while (prepare() && _pool[_readyHead].when < bound) {
            popAndRun();
            ++executed;
        }
        if (_curTick < bound)
            _curTick = bound;
        return executed;
    }

    /** Execute exactly one event, if any. @return true if one ran. */
    bool
    step()
    {
        if (!prepare())
            return false;
        popAndRun();
        return true;
    }

    /** @name Kernel geometry (exposed for tests/benchmarks). */
    /// @{
    static constexpr unsigned bucketCount = 1024;   ///< power of two
    static constexpr unsigned bucketSpanLog2 = 7;   ///< 128 ticks
    static constexpr Tick bucketSpan = Tick(1) << bucketSpanLog2;
    static constexpr Tick horizonTicks =
        Tick(bucketCount) << bucketSpanLog2;
    /// @}

  private:
    static constexpr std::uint32_t NIL = 0xffffffffu;
    static constexpr std::size_t initialPoolCapacity = 256;

    /** One pooled event. `next` chains bucket / ready / free lists. */
    struct EventRec
    {
        Tick when = 0;
        std::uint64_t seq = 0;
        std::uint32_t next = NIL;
        Callback cb;
    };

    struct Bucket
    {
        std::uint32_t head = NIL;
        std::uint32_t tail = NIL;
    };

    /** POD far-future heap entry; full record stays in the pool. */
    struct FarEntry
    {
        Tick when;
        std::uint64_t seq;
        std::uint32_t idx;
    };

    struct FarLater
    {
        bool
        operator()(const FarEntry &a, const FarEntry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    static constexpr std::uint32_t
    bucketIndex(Tick when)
    {
        return static_cast<std::uint32_t>(when >> bucketSpanLog2) &
               (bucketCount - 1);
    }

    std::uint32_t
    allocRec(Tick when, Callback cb)
    {
        std::uint32_t idx;
        if (_freeHead != NIL) {
            idx = _freeHead;
            _freeHead = _pool[idx].next;
        } else {
            idx = static_cast<std::uint32_t>(_pool.size());
            _pool.emplace_back();
        }
        EventRec &r = _pool[idx];
        r.when = when;
        r.seq = _nextSeq++;
        r.next = NIL;
        r.cb = std::move(cb);
        return idx;
    }

    void
    freeRec(std::uint32_t idx)
    {
        _pool[idx].next = _freeHead;
        _freeHead = idx;
    }

    void
    bucketAppend(std::uint32_t idx)
    {
        Bucket &b = _buckets[bucketIndex(_pool[idx].when)];
        if (b.tail == NIL)
            b.head = idx;
        else
            _pool[b.tail].next = idx;
        b.tail = idx;
        ++_wheelCount;
    }

    void
    farPush(std::uint32_t idx)
    {
        const EventRec &r = _pool[idx];
        _far.push_back(FarEntry{r.when, r.seq, idx});
        std::push_heap(_far.begin(), _far.end(), FarLater{});
    }

    /** Sorted insert into the ready list (rare slow path). */
    void
    readyInsert(std::uint32_t idx)
    {
        const Tick when = _pool[idx].when;
        const std::uint64_t seq = _pool[idx].seq;
        std::uint32_t prev = NIL;
        std::uint32_t cur = _readyHead;
        while (cur != NIL) {
            const EventRec &c = _pool[cur];
            if (c.when > when || (c.when == when && c.seq > seq))
                break;
            prev = cur;
            cur = c.next;
        }
        _pool[idx].next = cur;
        if (prev == NIL)
            _readyHead = idx;
        else
            _pool[prev].next = idx;
        if (cur == NIL)
            _readyTail = idx;
    }

    /**
     * Ensure the ready list holds the next pending event.
     * @return false if the queue is empty.
     */
    bool
    prepare()
    {
        if (_readyHead != NIL)
            return true;
        if (_wheelCount == 0 && _far.empty())
            return false;
        for (;;) {
            // Pull far-future events whose time entered the wheel
            // window into their buckets.
            while (!_far.empty() &&
                   _far.front().when - _wheelMin < horizonTicks) {
                const std::uint32_t idx = _far.front().idx;
                std::pop_heap(_far.begin(), _far.end(), FarLater{});
                _far.pop_back();
                bucketAppend(idx);
            }
            if (_wheelCount == 0) {
                // Nothing in the window: jump the wheel frontier to
                // the earliest far event and migrate it next pass.
                _wheelMin = (_far.front().when >> bucketSpanLog2)
                            << bucketSpanLog2;
                continue;
            }
            // Advance to the next non-empty bucket (bounded by the
            // wheel size because _wheelCount > 0).
            while (_buckets[bucketIndex(_wheelMin)].head == NIL)
                _wheelMin += bucketSpan;
            collect(_buckets[bucketIndex(_wheelMin)]);
            _wheelMin += bucketSpan;
            return true;
        }
    }

    /** Move one bucket's events to the ready list in sorted order. */
    void
    collect(Bucket &b)
    {
        _scratch.clear();
        for (std::uint32_t i = b.head; i != NIL; i = _pool[i].next)
            _scratch.push_back(i);
        b.head = b.tail = NIL;
        _wheelCount -= _scratch.size();
        if (_scratch.size() > 1) {
            std::sort(_scratch.begin(), _scratch.end(),
                      [this](std::uint32_t a, std::uint32_t c) {
                          const EventRec &ra = _pool[a];
                          const EventRec &rc = _pool[c];
                          if (ra.when != rc.when)
                              return ra.when < rc.when;
                          return ra.seq < rc.seq;
                      });
        }
        for (std::uint32_t i : _scratch) {
            _pool[i].next = NIL;
            if (_readyTail == NIL)
                _readyHead = i;
            else
                _pool[_readyTail].next = i;
            _readyTail = i;
        }
    }

    /** Pop the ready head and execute it (precondition: non-empty). */
    void
    popAndRun()
    {
        const std::uint32_t idx = _readyHead;
        EventRec &r = _pool[idx];
        _readyHead = r.next;
        if (_readyHead == NIL)
            _readyTail = NIL;
        const Tick when = r.when;
        // Move the callback out and recycle the record before
        // invoking: the callback may schedule new events (growing the
        // pool) including at the current tick.
        Callback cb = std::move(r.cb);
        freeRec(idx);
        --_size;
        _curTick = when;
        cb();
    }

    std::vector<EventRec> _pool;
    std::uint32_t _freeHead = NIL;

    Bucket _buckets[bucketCount];
    std::size_t _wheelCount = 0;
    /**
     * Start of the first un-collected bucket; always bucket-aligned
     * and > curTick once events have run. Wheel-resident events all
     * have `when` in [_wheelMin, _wheelMin + horizonTicks).
     */
    Tick _wheelMin = 0;

    std::vector<FarEntry> _far;

    std::uint32_t _readyHead = NIL;
    std::uint32_t _readyTail = NIL;

    std::vector<std::uint32_t> _scratch;

    std::size_t _size = 0;
    Tick _curTick = 0;
    std::uint64_t _nextSeq = 0;
};

/**
 * Base class for named simulated components bound to an event queue.
 */
class SimObject
{
  public:
    SimObject(EventQueue &eq, std::string name)
        : _eq(eq), _name(std::move(name))
    {}

    virtual ~SimObject() = default;

    const std::string &name() const { return _name; }
    EventQueue &eventQueue() const { return _eq; }
    Tick curTick() const { return _eq.curTick(); }

  protected:
    EventQueue &_eq;

  private:
    std::string _name;
};

} // namespace tsim

#endif // TSIM_SIM_EVENT_QUEUE_HH
