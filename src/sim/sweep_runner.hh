/**
 * @file
 * Multi-threaded runner for independent simulations.
 *
 * Every figure in the reproduction replays a (design x workload)
 * grid of simulations that share nothing: each System owns a private
 * EventQueue, RNG, and statistics. SweepRunner exploits that
 * embarrassing parallelism with a small work-stealing thread pool
 * while keeping the output deterministic — results are stored by job
 * index, so a parallel sweep is byte-identical to a serial one
 * regardless of completion order.
 */

#ifndef TSIM_SIM_SWEEP_RUNNER_HH
#define TSIM_SIM_SWEEP_RUNNER_HH

#include <cstddef>
#include <functional>
#include <vector>

#include "system/system.hh"
#include "workload/profiles.hh"

namespace tsim
{

/** One (configuration, workload) pair of a sweep. */
struct SweepJob
{
    SystemConfig cfg;
    WorkloadProfile workload;
};

/**
 * Give every job a distinct trace path `<prefix>_jobNNN.tdt` so a
 * parallel sweep never has two Systems writing one file. Job order is
 * the naming key, so serial and `--jobs N` sweeps of the same job
 * list produce identical file sets (CI diffs them byte-for-byte).
 * Empty @p prefix clears every tracePath.
 */
void applyTracePrefix(std::vector<SweepJob> &jobs,
                      const std::string &prefix);

/**
 * Work-stealing pool for independent simulation runs.
 *
 * Jobs are dealt round-robin onto per-worker deques; each worker
 * drains its own deque from the front and steals from the back of
 * its peers when it runs dry. Exceptions thrown by a job are
 * captured and rethrown on the calling thread after the pool joins.
 */
class SweepRunner
{
  public:
    /** @param jobs Worker count; 0 means hardware_concurrency. */
    explicit SweepRunner(unsigned jobs = 0);

    /** Number of workers this runner uses. */
    unsigned jobs() const { return _jobs; }

    /**
     * Invoke @p fn(i) for every i in [0, n), distributed across the
     * pool. fn must only touch per-index state. Returns after every
     * index completed; rethrows the first captured exception.
     */
    void forEach(std::size_t n,
                 // tdram-lint:allow(hot-alloc): host-side sweep
                 // orchestration interface, not per-event code.
                 const std::function<void(std::size_t)> &fn) const;

    /** Run every job; reports are returned in job order. */
    std::vector<SimReport> run(const std::vector<SweepJob> &jobs) const;

  private:
    unsigned _jobs;
};

} // namespace tsim

#endif // TSIM_SIM_SWEEP_RUNNER_HH
