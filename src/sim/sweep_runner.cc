#include "sim/sweep_runner.hh"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

namespace tsim
{

namespace
{

/** One worker's deque. Owner pops the front, thieves take the back. */
struct WorkerQueue
{
    std::mutex mtx;
    std::deque<std::size_t> items;

    bool
    popFront(std::size_t &out)
    {
        std::lock_guard<std::mutex> g(mtx);
        if (items.empty())
            return false;
        out = items.front();
        items.pop_front();
        return true;
    }

    bool
    stealBack(std::size_t &out)
    {
        std::lock_guard<std::mutex> g(mtx);
        if (items.empty())
            return false;
        out = items.back();
        items.pop_back();
        return true;
    }
};

} // namespace

void
applyTracePrefix(std::vector<SweepJob> &jobs, const std::string &prefix)
{
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (prefix.empty()) {
            jobs[i].cfg.tracePath.clear();
            continue;
        }
        char suffix[32];
        std::snprintf(suffix, sizeof(suffix), "_job%03zu.tdt", i);
        jobs[i].cfg.tracePath = prefix + suffix;
    }
}

SweepRunner::SweepRunner(unsigned jobs) : _jobs(jobs)
{
    if (_jobs == 0) {
        _jobs = std::thread::hardware_concurrency();
        if (_jobs == 0)
            _jobs = 1;
    }
}

void
SweepRunner::forEach(std::size_t n,
                     // tdram-lint:allow(hot-alloc): host-side job
                     // orchestration, invoked once per sweep job —
                     // never on the simulated event path.
                     const std::function<void(std::size_t)> &fn) const
{
    if (n == 0)
        return;
    const unsigned workers =
        static_cast<unsigned>(std::min<std::size_t>(_jobs, n));
    if (workers <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    // tdram-lint:allow(hot-alloc): per-sweep worker setup (one
    // allocation per parallel sweep, not per simulated event).
    std::vector<WorkerQueue> queues(workers);
    for (std::size_t i = 0; i < n; ++i)
        queues[i % workers].items.push_back(i);

    std::mutex err_mtx;
    std::exception_ptr first_error;

    auto worker = [&](unsigned self) {
        std::size_t item;
        for (;;) {
            bool found = queues[self].popFront(item);
            for (unsigned k = 1; !found && k < workers; ++k)
                found = queues[(self + k) % workers].stealBack(item);
            if (!found)
                return;  // all work claimed; nothing requeues
            try {
                fn(item);
            } catch (...) {
                std::lock_guard<std::mutex> g(err_mtx);
                if (!first_error)
                    first_error = std::current_exception();
            }
        }
    };

    // tdram-lint:allow(hot-alloc): per-sweep thread-pool launch.
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        threads.emplace_back(worker, w);
    for (auto &t : threads)
        t.join();

    if (first_error)
        std::rethrow_exception(first_error);
}

std::vector<SimReport>
SweepRunner::run(const std::vector<SweepJob> &jobs) const
{
    // Sweep-level workers multiply with each run's intra-run shard
    // threads; past the hardware thread count that only adds
    // contention (determinism is unaffected either way), so warn.
    unsigned inner = 1;
    for (const SweepJob &j : jobs)
        inner = std::max(inner, std::max(1u, j.cfg.threads));
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw && inner > 1 && _jobs * inner > hw) {
        std::fprintf(stderr,
                     "[sweep] warning: %u sweep worker(s) x %u "
                     "intra-run thread(s) oversubscribes %u hardware "
                     "thread(s); prefer --jobs x --threads <= cores\n",
                     _jobs, inner, hw);
    }
    // tdram-lint:allow(hot-alloc): one report slot per sweep job,
    // allocated before any simulation starts.
    std::vector<SimReport> reports(jobs.size());
    forEach(jobs.size(), [&](std::size_t i) {
        reports[i] = runOne(jobs[i].cfg, jobs[i].workload);
    });
    return reports;
}

} // namespace tsim
