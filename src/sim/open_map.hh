/**
 * @file
 * Flat open-addressing hash map with 64-bit keys.
 *
 * Replaces std::unordered_map on simulator hot paths (MSHR set
 * queues, pending-write counts) where the node allocation per insert
 * and pointer-chasing per lookup dominate. Linear probing over one
 * contiguous slot array, power-of-two capacity, and backward-shift
 * deletion (no tombstones) — the same scheme the channel scheduler's
 * read-id index uses (DESIGN.md §9). Nothing iterates these maps, so
 * no ordering is exposed and growth cannot perturb determinism.
 */

#ifndef TSIM_SIM_OPEN_MAP_HH
#define TSIM_SIM_OPEN_MAP_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace tsim
{

/** Open-addressing map from std::uint64_t to @p V. */
template <typename V>
class OpenHashMap
{
  public:
    explicit OpenHashMap(std::size_t initial_slots = 64)
    {
        std::size_t n = 16;
        while (n < initial_slots)
            n <<= 1;
        _slots.resize(n);
        _mask = static_cast<std::uint64_t>(n - 1);
    }

    std::size_t size() const { return _size; }
    bool empty() const { return _size == 0; }

    bool contains(std::uint64_t key) const { return findSlot(key); }

    /** Pointer to the mapped value, or nullptr if absent. */
    V *
    find(std::uint64_t key)
    {
        const Slot *s = findSlot(key);
        return s ? const_cast<V *>(&s->val) : nullptr;
    }

    const V *
    find(std::uint64_t key) const
    {
        const Slot *s = findSlot(key);
        return s ? &s->val : nullptr;
    }

    /** Mapped value, value-initialized and inserted if absent. */
    V &
    operator[](std::uint64_t key)
    {
        maybeGrow();
        std::uint64_t i = hash(key) & _mask;
        while (_slots[i].used) {
            if (_slots[i].key == key)
                return _slots[i].val;
            i = (i + 1) & _mask;
        }
        _slots[i].used = true;
        _slots[i].key = key;
        _slots[i].val = V{};
        ++_size;
        return _slots[i].val;
    }

    /** Remove @p key if present (backward-shift, no tombstones). */
    void
    erase(std::uint64_t key)
    {
        std::uint64_t i = hash(key) & _mask;
        for (;;) {
            if (!_slots[i].used)
                return;
            if (_slots[i].key == key)
                break;
            i = (i + 1) & _mask;
        }
        --_size;
        std::uint64_t hole = i;
        std::uint64_t j = i;
        for (;;) {
            j = (j + 1) & _mask;
            if (!_slots[j].used)
                break;
            const std::uint64_t home = hash(_slots[j].key) & _mask;
            if (((j - home) & _mask) >= ((j - hole) & _mask)) {
                _slots[hole] = std::move(_slots[j]);
                hole = j;
            }
        }
        _slots[hole].used = false;
        _slots[hole].val = V{};
    }

    /**
     * Visit every mapped value (slot order, not insertion order) —
     * teardown/debug only; simulation paths must not depend on it.
     */
    template <typename F>
    void
    forEach(F f)
    {
        for (Slot &s : _slots) {
            if (s.used)
                f(s.key, s.val);
        }
    }

    template <typename F>
    void
    forEach(F f) const
    {
        for (const Slot &s : _slots) {
            if (s.used)
                f(s.key, s.val);
        }
    }

  private:
    struct Slot
    {
        std::uint64_t key = 0;
        V val{};
        bool used = false;
    };

    static std::uint64_t
    hash(std::uint64_t k)
    {
        k *= 0x9e3779b97f4a7c15ull;
        return k ^ (k >> 32);
    }

    const Slot *
    findSlot(std::uint64_t key) const
    {
        std::uint64_t i = hash(key) & _mask;
        while (_slots[i].used) {
            if (_slots[i].key == key)
                return &_slots[i];
            i = (i + 1) & _mask;
        }
        return nullptr;
    }

    void
    maybeGrow()
    {
        if (_size * 4 < _slots.size() * 3)
            return;
        // tdram-lint:allow(hot-alloc): amortized rehash — rebinds the
        // moved-from slot array; O(1) allocations per N inserts.
        std::vector<Slot> old = std::move(_slots);
        _slots.clear();
        _slots.resize(old.size() * 2);
        _mask = static_cast<std::uint64_t>(_slots.size() - 1);
        _size = 0;
        for (Slot &s : old) {
            if (s.used)
                (*this)[s.key] = std::move(s.val);
        }
    }

    std::vector<Slot> _slots;
    std::uint64_t _mask = 0;
    std::size_t _size = 0;
};

/**
 * Open-addressing set of 64-bit keys: the same slot scheme (and the
 * same no-exposed-iteration guarantee) as OpenHashMap, for hot-path
 * membership tests that previously leaned on std::unordered_set and
 * its node allocation per insert.
 */
class OpenHashSet
{
  public:
    explicit OpenHashSet(std::size_t initial_slots = 64)
        : _m(initial_slots)
    {
    }

    std::size_t size() const { return _m.size(); }
    bool empty() const { return _m.empty(); }
    bool contains(std::uint64_t key) const { return _m.contains(key); }

    void insert(std::uint64_t key) { _m[key] = 1; }

    /** Remove @p key; @return true when it was present. */
    bool
    erase(std::uint64_t key)
    {
        if (!_m.contains(key))
            return false;
        _m.erase(key);
        return true;
    }

  private:
    OpenHashMap<unsigned char> _m;
};

} // namespace tsim

#endif // TSIM_SIM_OPEN_MAP_HH
