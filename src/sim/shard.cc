#include "sim/shard.hh"

namespace tsim
{

void
ShardOutbox::drainInto(EventQueue &front, Tick latency)
{
    for (ShardMsg &m : _msgs) {
        const Tick d = m.at + latency;
        front.schedule(d, [fn = std::move(m.fn), d]() mutable {
            fn(d);
        });
    }
    _msgs.clear();
}

ShardSim::ShardSim(unsigned shards, unsigned threads)
    : _threads(threads == 0 ? 1 : threads)
{
    _shards.reserve(shards);
    for (unsigned s = 0; s < shards; ++s)
        _shards.push_back(std::make_unique<Shard>());
    // Worker w (1-based) handles shards with s % threads == w; the
    // coordinator doubles as worker 0 during phase B. More threads
    // than shards would leave workers permanently idle.
    const unsigned spawn =
        std::min(_threads, shards ? shards : 1u) - 1;
    for (unsigned w = 1; w <= spawn; ++w)
        _workers.emplace_back([this, w] { workerLoop(w); });
    _threads = spawn + 1;
}

ShardSim::~ShardSim()
{
    if (!_workers.empty()) {
        _stop.store(true, std::memory_order_relaxed);
        _epoch.fetch_add(1, std::memory_order_release);
        for (std::thread &t : _workers)
            t.join();
    }
}

void
ShardSim::runOwned(unsigned worker, Tick bound)
{
    for (unsigned s = worker; s < _shards.size(); s += _threads) {
        Shard &sh = *_shards[s];
        sh.executed = sh.eq.runBefore(bound);
    }
}

void
ShardSim::workerLoop(unsigned worker)
{
    std::uint64_t seen = 0;
    for (;;) {
        while (_epoch.load(std::memory_order_acquire) == seen)
            std::this_thread::yield();
        ++seen;
        if (_stop.load(std::memory_order_relaxed))
            return;
        runOwned(worker, _bound);
        _done.fetch_add(1, std::memory_order_release);
    }
}

std::uint64_t
ShardSim::runChannelPhase(Tick bound)
{
    if (_workers.empty()) {
        // Canonical serial schedule: every shard inline, ascending.
        runOwned(0, bound);
    } else {
        _bound = bound;
        _done.store(0, std::memory_order_relaxed);
        _epoch.fetch_add(1, std::memory_order_release);
        runOwned(0, bound);
        const unsigned workers =
            static_cast<unsigned>(_workers.size());
        while (_done.load(std::memory_order_acquire) != workers)
            std::this_thread::yield();
    }
    std::uint64_t executed = 0;
    for (const auto &sh : _shards)
        executed += sh->executed;
    return executed;
}

void
ShardSim::drainOutboxes(EventQueue &front)
{
    for (auto &sh : _shards)
        sh->outbox.drainInto(front, _window);
}

Tick
ShardSim::nextEventTick() const
{
    Tick m = maxTick;
    for (const auto &sh : _shards)
        m = std::min(m, sh->eq.nextEventTick());
    return m;
}

} // namespace tsim
