/**
 * @file
 * Sharded deterministic simulation engine (DESIGN.md §12).
 *
 * Splits one simulated system across worker threads while keeping
 * every observable output — event interleaving, trace byte-streams,
 * stats, checker verdicts — bit-identical for any thread count.
 *
 * Model: the system is partitioned into one *front* shard (cores,
 * LLC, DRAM-cache controller front-end, main-memory front queues;
 * always driven by the coordinating thread through the System's own
 * EventQueue) plus one shard per DRAM channel, each owning a private
 * EventQueue. Time advances in conservative windows of W ticks
 * (W = the configured lookahead, by default the minimum tBURST over
 * all channels). Each superstep k covers [k*W, (k+1)*W) and runs in
 * two phases:
 *
 *  - Phase A: the front shard runs its window alone. Channels are
 *    quiescent, so the front may call into them directly (enqueue,
 *    admission checks, flush-buffer queries) with no synchronization.
 *  - Phase B: every channel shard runs its window, distributed over
 *    the worker threads. The front is quiescent; channels may read
 *    the controller's tag state through their side-effect-free
 *    peekTags hook, and deliver completions (tag results, data-done,
 *    flush arrivals) by posting closures into their per-shard outbox
 *    instead of calling the controller.
 *
 * At the superstep boundary the coordinator drains every outbox in
 * ascending shard order (FIFO within a shard) into the front queue,
 * delivering each message at its emission tick plus W. Phase order,
 * drain order, and per-queue execution order are all fixed by the
 * configuration, so the schedule is a pure function of the config —
 * the thread count only changes which OS thread runs which shard.
 *
 * Synchronization is a lock-free epoch barrier: the coordinator
 * publishes the window bound and bumps an atomic epoch; workers spin
 * (yielding) on the epoch, run their shards, and bump a done
 * counter the coordinator spins on. The release/acquire pairs give
 * the cross-phase happens-before edges both ways.
 */

#ifndef TSIM_SIM_SHARD_HH
#define TSIM_SIM_SHARD_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/inline_function.hh"
#include "sim/ticks.hh"

namespace tsim
{

/** Callback type delivered across a shard boundary. */
using ShardFn = InlineCallable<void(Tick), 64>;

/** One cross-shard message: a closure and its emission tick. */
struct ShardMsg
{
    Tick at = 0;
    ShardFn fn;
};

/**
 * Per-shard outbound mailbox (channel shard -> front shard).
 *
 * Single-producer (the shard's owning worker, during phase B),
 * single-consumer (the coordinator, at the superstep boundary); the
 * two roles are separated by the epoch barrier, so a plain vector
 * needs no further synchronization.
 */
class ShardOutbox
{
  public:
    /** Post @p fn for delivery; @p at must be the current tick. */
    void
    post(Tick at, ShardFn fn)
    {
        _msgs.push_back(ShardMsg{at, std::move(fn)});
    }

    bool empty() const { return _msgs.empty(); }

    /**
     * Deliver every message into @p front in FIFO order: each
     * closure is scheduled (and invoked with) its emission tick plus
     * @p latency, the uniform cross-shard delivery delay.
     */
    void drainInto(EventQueue &front, Tick latency);

  private:
    std::vector<ShardMsg> _msgs;
};

/**
 * Owns the channel-shard event queues, outboxes, worker threads, and
 * the epoch barrier. The System drives it one superstep at a time.
 */
class ShardSim
{
  public:
    /**
     * @param shards  Channel shard count (DRAM-cache + main-memory
     *                channels; fixed by the configuration).
     * @param threads Total execution threads including the
     *                coordinator. 1 spawns no workers: every phase-B
     *                shard runs inline on the coordinator, which is
     *                the canonical serial schedule every other
     *                thread count must reproduce byte-for-byte.
     */
    ShardSim(unsigned shards, unsigned threads);
    ~ShardSim();

    ShardSim(const ShardSim &) = delete;
    ShardSim &operator=(const ShardSim &) = delete;

    unsigned numShards() const
    {
        return static_cast<unsigned>(_shards.size());
    }
    unsigned threads() const { return _threads; }

    EventQueue &queue(unsigned s) { return _shards[s]->eq; }
    ShardOutbox &outbox(unsigned s) { return _shards[s]->outbox; }

    /** Conservative window width in ticks (set once before running). */
    void setWindow(Tick w) { _window = w; }
    Tick window() const { return _window; }

    /**
     * Phase B: run every channel shard up to (excluding) @p bound,
     * in parallel across the worker threads.
     * @return events executed across all shards.
     */
    std::uint64_t runChannelPhase(Tick bound);

    /** Drain every outbox into @p front (ascending shard order). */
    void drainOutboxes(EventQueue &front);

    /** Earliest pending event over all channel shards (maxTick if none). */
    Tick nextEventTick() const;

  private:
    struct Shard
    {
        EventQueue eq;
        ShardOutbox outbox;
        /** Events executed in the last phase (owner-written). */
        std::uint64_t executed = 0;
    };

    /** Run the shards owned by @p worker up to @p bound. */
    void runOwned(unsigned worker, Tick bound);

    void workerLoop(unsigned worker);

    std::vector<std::unique_ptr<Shard>> _shards;
    unsigned _threads;
    std::vector<std::thread> _workers;

    /** Barrier state. @{ */
    std::atomic<std::uint64_t> _epoch{0};
    std::atomic<unsigned> _done{0};
    std::atomic<bool> _stop{false};
    Tick _bound = 0;   ///< published before the epoch bump
    /** @} */

    Tick _window = 0;
};

} // namespace tsim

#endif // TSIM_SIM_SHARD_HH
