/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**).
 *
 * Every source of randomness in the simulator draws from a seeded Rng
 * so that runs are reproducible bit-for-bit. std::mt19937 is avoided
 * in hot paths; xoshiro256** is faster and has excellent statistical
 * quality for simulation purposes.
 */

#ifndef TSIM_SIM_RNG_HH
#define TSIM_SIM_RNG_HH

#include <cstdint>

namespace tsim
{

/** Deterministic 64-bit PRNG (xoshiro256**). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        // SplitMix64 seeding as recommended by the xoshiro authors.
        std::uint64_t x = seed;
        for (auto &si : s) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            si = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
        const std::uint64_t t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = rotl(s[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be non-zero. */
    std::uint64_t
    range(std::uint64_t bound)
    {
        // Lemire's nearly-divisionless method.
        __uint128_t m = static_cast<__uint128_t>(next()) * bound;
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p. */
    bool chance(double p) { return uniform() < p; }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s[4];
};

} // namespace tsim

#endif // TSIM_SIM_RNG_HH
