/**
 * @file
 * Functional tag/metadata store for a DRAM cache.
 *
 * In TDRAM/NDC this state physically lives in on-die tag mats; in
 * CascadeLake/Alloy/BEAR it lives in the ECC bits / TAD layout of the
 * data rows. Either way the *functional* content is the same, so one
 * array serves every design; only the modelled timing of consulting
 * it differs.
 *
 * Supports direct-mapped (ways == 1, the paper's default) and
 * set-associative (§V-F) organizations with LRU replacement.
 *
 * Two access styles:
 *  - address-based (`peek` / `touch` / `markDirty` / `install`): each
 *    call re-searches the set; convenient for cold paths and tests.
 *  - probe-handle (`probe` returning a Probe, then the Probe-taking
 *    overloads): one associative search serves the entire access; the
 *    hot path in SramCache and DramCacheCtrl::resolveTags uses this.
 * Both styles produce identical functional behaviour and identical
 * LRU-clock sequencing.
 */

#ifndef TSIM_TDRAM_TAG_ARRAY_HH
#define TSIM_TDRAM_TAG_ARRAY_HH

#include <cstdint>
#include <vector>

#include "mem/types.hh"
#include "sim/logging.hh"

namespace tsim
{

/** Result of consulting the tag store for one line address. */
struct TagResult
{
    bool hit = false;
    bool valid = false;      ///< the indexed victim way holds a line
    bool dirty = false;      ///< hit: the line; miss: the victim
    Addr victimAddr = 0;     ///< line resident in the victim way
    bool viaProbe = false;   ///< result produced by an early tag probe
};

/** Set-associative functional tag array with LRU replacement. */
class TagArray
{
  public:
    /**
     * Handle from one associative lookup, reusable for the follow-up
     * mutation of the same access (touch / markDirty / install)
     * without re-searching the set. Valid until the next mutation of
     * this TagArray through any other handle or address.
     */
    struct Probe
    {
        TagResult result;        ///< identical to what peek() returns
        std::uint64_t set = 0;
        unsigned way = 0;        ///< hit way on a hit, victim way else
    };

    /**
     * @param capacity_bytes Cache data capacity.
     * @param ways           Associativity (1 = direct-mapped).
     */
    TagArray(std::uint64_t capacity_bytes, unsigned ways = 1)
        : _ways(ways)
    {
        fatal_if(ways == 0, "associativity must be >= 1");
        std::uint64_t lines = capacity_bytes / lineBytes;
        fatal_if(lines == 0 || lines % ways != 0,
                 "capacity must be a multiple of ways*lineBytes");
        _sets = lines / ways;
        fatal_if(_sets & (_sets - 1), "set count must be a power of two");
        _entries.resize(lines);
    }

    std::uint64_t numSets() const { return _sets; }
    unsigned ways() const { return _ways; }

    /** Set index of a line address. */
    std::uint64_t
    setIndex(Addr addr) const
    {
        return (addr / lineBytes) & (_sets - 1);
    }

    /**
     * One associative search of @p addr's set without changing any
     * state. On a miss, the handle's way is the LRU victim way (an
     * invalid way wins outright) and result.victimAddr/valid/dirty
     * describe the line an install would evict — what the in-DRAM
     * comparator (TDRAM) or controller-side compare (others) observes.
     */
    Probe
    probe(Addr addr) const
    {
        Probe p;
        const std::uint64_t set = setIndex(addr);
        const Addr want = tagOf(addr);
        p.set = set;
        const Entry *base = &_entries[set * _ways];
        unsigned victim = 0;
        bool invalidFound = false;
        for (unsigned w = 0; w < _ways; ++w) {
            const Entry &e = base[w];
            if (e.valid() && e.tag() == want) {
                p.way = w;
                p.result.hit = true;
                p.result.valid = true;
                p.result.dirty = e.dirty();
                p.result.victimAddr = addr;
                return p;
            }
            if (!invalidFound) {
                if (!e.valid()) {
                    invalidFound = true;
                    victim = w;
                } else if (e.lru < base[victim].lru) {
                    victim = w;
                }
            }
        }
        const Entry &v = base[victim];
        p.way = victim;
        p.result.valid = v.valid();
        p.result.dirty = v.valid() && v.dirty();
        p.result.victimAddr = v.valid() ? rebuildAddr(set, v.tag()) : 0;
        return p;
    }

    /** Look up @p addr without changing any state. */
    TagResult peek(Addr addr) const { return probe(addr).result; }

    /** Touch LRU state on a hit (no-op if the probe missed). */
    void
    touch(const Probe &p)
    {
        if (p.result.hit)
            entryAt(p).lru = ++_clock;
    }

    /** Mark the probed line dirty (write hit). Panics on a miss. */
    void
    markDirty(const Probe &p)
    {
        panic_if(!p.result.hit, "markDirty on non-resident line");
        Entry &e = entryAt(p);
        e.setDirty(true);
        e.lru = ++_clock;
    }

    /**
     * Install @p addr into the probed way (the hit way when resident,
     * else the LRU victim) and set its dirty bit. @p p must come from
     * probing the same @p addr.
     */
    void
    install(Addr addr, bool dirty, const Probe &p)
    {
        Entry &e = entryAt(p);
        e.assign(tagOf(addr), dirty);
        e.lru = ++_clock;
    }

    /**
     * Install @p addr (evicting the LRU victim) and set its dirty bit.
     * Used on fills (dirty=false) and write allocations (dirty=true).
     */
    void
    install(Addr addr, bool dirty)
    {
        install(addr, dirty, probe(addr));
    }

    /** Mark a resident line dirty (write hit). Panics if absent. */
    void
    markDirty(Addr addr)
    {
        Entry *e = find(addr);
        panic_if(!e, "markDirty on non-resident line %llx",
                 (unsigned long long)addr);
        e->setDirty(true);
        e->lru = ++_clock;
    }

    /** Mark a resident line clean (after a writeback). */
    void
    markClean(Addr addr)
    {
        if (Entry *e = find(addr))
            e->setDirty(false);
    }

    /** Touch LRU state on a hit. */
    void
    touch(Addr addr)
    {
        if (Entry *e = find(addr))
            e->lru = ++_clock;
    }

    /** Drop a line if resident. */
    void
    invalidate(Addr addr)
    {
        if (Entry *e = find(addr))
            e->setValid(false);
    }

    /** True if the line is resident. */
    bool isHit(Addr addr) const { return peek(addr).hit; }

    /** Number of valid lines (for tests / occupancy reporting). */
    std::uint64_t
    validCount() const
    {
        std::uint64_t n = 0;
        for (const auto &e : _entries)
            n += e.valid();
        return n;
    }

  private:
    /**
     * Packed way metadata: tag, dirty and valid share one word so a
     * set scan touches 16 B/way instead of 24 and the compare is one
     * load + mask. Line tags are addr/lineBytes/sets <= 2^58, so two
     * flag bits always fit.
     */
    struct Entry
    {
        std::uint64_t meta = 0;  ///< tag << 2 | dirty << 1 | valid
        std::uint64_t lru = 0;

        bool valid() const { return meta & 1; }
        bool dirty() const { return meta & 2; }
        Addr tag() const { return meta >> 2; }
        void setDirty(bool d) { meta = d ? meta | 2 : meta & ~2ull; }
        void setValid(bool v) { meta = v ? meta | 1 : meta & ~1ull; }
        void
        assign(Addr tag, bool dirty)
        {
            meta = (tag << 2) | (dirty ? 2u : 0u) | 1u;
        }
    };

    Addr tagOf(Addr addr) const { return (addr / lineBytes) / _sets; }

    Addr
    rebuildAddr(std::uint64_t set, Addr tag) const
    {
        return (tag * _sets + set) * lineBytes;
    }

    Entry &entryAt(const Probe &p)
    {
        return _entries[p.set * _ways + p.way];
    }

    Entry *
    find(Addr addr)
    {
        const std::uint64_t set = setIndex(addr);
        const Addr want = tagOf(addr);
        Entry *base = &_entries[set * _ways];
        for (unsigned w = 0; w < _ways; ++w) {
            Entry &e = base[w];
            if (e.valid() && e.tag() == want)
                return &e;
        }
        return nullptr;
    }

    unsigned _ways;
    std::uint64_t _sets;
    std::uint64_t _clock = 0;
    std::vector<Entry> _entries;
};

} // namespace tsim

#endif // TSIM_TDRAM_TAG_ARRAY_HH
