/**
 * @file
 * Functional tag/metadata store for a DRAM cache.
 *
 * In TDRAM/NDC this state physically lives in on-die tag mats; in
 * CascadeLake/Alloy/BEAR it lives in the ECC bits / TAD layout of the
 * data rows. Either way the *functional* content is the same, so one
 * array serves every design; only the modelled timing of consulting
 * it differs.
 *
 * Supports direct-mapped (ways == 1, the paper's default) and
 * set-associative (§V-F) organizations with LRU replacement.
 */

#ifndef TSIM_TDRAM_TAG_ARRAY_HH
#define TSIM_TDRAM_TAG_ARRAY_HH

#include <cstdint>
#include <vector>

#include "mem/types.hh"
#include "sim/logging.hh"

namespace tsim
{

/** Result of consulting the tag store for one line address. */
struct TagResult
{
    bool hit = false;
    bool valid = false;      ///< the indexed victim way holds a line
    bool dirty = false;      ///< hit: the line; miss: the victim
    Addr victimAddr = 0;     ///< line resident in the victim way
    bool viaProbe = false;   ///< result produced by an early tag probe
};

/** Set-associative functional tag array with LRU replacement. */
class TagArray
{
  public:
    /**
     * @param capacity_bytes Cache data capacity.
     * @param ways           Associativity (1 = direct-mapped).
     */
    TagArray(std::uint64_t capacity_bytes, unsigned ways = 1)
        : _ways(ways)
    {
        fatal_if(ways == 0, "associativity must be >= 1");
        std::uint64_t lines = capacity_bytes / lineBytes;
        fatal_if(lines == 0 || lines % ways != 0,
                 "capacity must be a multiple of ways*lineBytes");
        _sets = lines / ways;
        fatal_if(_sets & (_sets - 1), "set count must be a power of two");
        _entries.resize(lines);
    }

    std::uint64_t numSets() const { return _sets; }
    unsigned ways() const { return _ways; }

    /** Set index of a line address. */
    std::uint64_t
    setIndex(Addr addr) const
    {
        return (addr / lineBytes) & (_sets - 1);
    }

    /**
     * Look up @p addr without changing any state.
     *
     * On a miss, victimAddr/valid/dirty describe the LRU way that an
     * install would evict. This is what the in-DRAM comparator (TDRAM)
     * or the controller-side compare (others) observes.
     */
    TagResult
    peek(Addr addr) const
    {
        TagResult r;
        const std::uint64_t set = setIndex(addr);
        for (unsigned w = 0; w < _ways; ++w) {
            const Entry &e = entry(set, w);
            if (e.valid && e.tag == tagOf(addr)) {
                r.hit = true;
                r.valid = true;
                r.dirty = e.dirty;
                r.victimAddr = addr;
                return r;
            }
        }
        const Entry &victim = entry(set, victimWay(set));
        r.valid = victim.valid;
        r.dirty = victim.valid && victim.dirty;
        r.victimAddr = victim.valid ? rebuildAddr(set, victim.tag) : 0;
        return r;
    }

    /**
     * Install @p addr (evicting the LRU victim) and set its dirty bit.
     * Used on fills (dirty=false) and write allocations (dirty=true).
     */
    void
    install(Addr addr, bool dirty)
    {
        const std::uint64_t set = setIndex(addr);
        Entry *slot = find(addr);
        if (!slot)
            slot = &entry(set, victimWay(set));
        slot->valid = true;
        slot->tag = tagOf(addr);
        slot->dirty = dirty;
        slot->lru = ++_clock;
    }

    /** Mark a resident line dirty (write hit). Panics if absent. */
    void
    markDirty(Addr addr)
    {
        Entry *e = find(addr);
        panic_if(!e, "markDirty on non-resident line %llx",
                 (unsigned long long)addr);
        e->dirty = true;
        e->lru = ++_clock;
    }

    /** Mark a resident line clean (after a writeback). */
    void
    markClean(Addr addr)
    {
        if (Entry *e = find(addr))
            e->dirty = false;
    }

    /** Touch LRU state on a hit. */
    void
    touch(Addr addr)
    {
        if (Entry *e = find(addr))
            e->lru = ++_clock;
    }

    /** Drop a line if resident. */
    void
    invalidate(Addr addr)
    {
        if (Entry *e = find(addr))
            e->valid = false;
    }

    /** True if the line is resident. */
    bool isHit(Addr addr) const { return peek(addr).hit; }

    /** Number of valid lines (for tests / occupancy reporting). */
    std::uint64_t
    validCount() const
    {
        std::uint64_t n = 0;
        for (const auto &e : _entries)
            n += e.valid;
        return n;
    }

  private:
    struct Entry
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lru = 0;
    };

    Addr tagOf(Addr addr) const { return (addr / lineBytes) / _sets; }

    Addr
    rebuildAddr(std::uint64_t set, Addr tag) const
    {
        return (tag * _sets + set) * lineBytes;
    }

    Entry &entry(std::uint64_t set, unsigned way)
    {
        return _entries[set * _ways + way];
    }

    const Entry &entry(std::uint64_t set, unsigned way) const
    {
        return _entries[set * _ways + way];
    }

    /** LRU victim way of a set (an invalid way wins outright). */
    unsigned
    victimWay(std::uint64_t set) const
    {
        unsigned best = 0;
        for (unsigned w = 0; w < _ways; ++w) {
            const Entry &e = entry(set, w);
            if (!e.valid)
                return w;
            if (e.lru < entry(set, best).lru)
                best = w;
        }
        return best;
    }

    Entry *
    find(Addr addr)
    {
        const std::uint64_t set = setIndex(addr);
        for (unsigned w = 0; w < _ways; ++w) {
            Entry &e = entry(set, w);
            if (e.valid && e.tag == tagOf(addr))
                return &e;
        }
        return nullptr;
    }

    unsigned _ways;
    std::uint64_t _sets;
    std::uint64_t _clock = 0;
    std::vector<Entry> _entries;
};

} // namespace tsim

#endif // TSIM_TDRAM_TAG_ARRAY_HH
