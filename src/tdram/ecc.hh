/**
 * @file
 * Error-correcting codes for TDRAM's tag and data paths (§III-C3).
 *
 * TDRAM keeps *separate* ECC for tags and data:
 *
 *  - Data uses the baseline HBM3 scheme; we model the classic
 *    SECDED(72,64) Hamming+parity code at 64-bit granularity
 *    (single-error correct, double-error detect).
 *  - Tags and metadata are much smaller — the paper's direct-mapped
 *    example is 14 b tag + valid + dirty = 16 b payload protected by
 *    8 redundant bits — and are corrected by on-die circuitry before
 *    the comparator. We model that as SECDED(22,16) padded into the
 *    8-bit redundancy budget, which leaves headroom exactly as the
 *    paper notes ("8 bits ECC to cover the 16 bits").
 *
 * The codecs are functional (used by reliability tests and the
 * fault-injection harness), not on the timing path: correction
 * latency is part of the tag-mat access time in Table III.
 */

#ifndef TSIM_TDRAM_ECC_HH
#define TSIM_TDRAM_ECC_HH

#include <cstdint>

namespace tsim
{

/** Outcome of a decode. */
enum class EccStatus : std::uint8_t
{
    Ok,            ///< no error present
    Corrected,     ///< single-bit error fixed
    Uncorrectable, ///< double-bit (or worse) error detected
};

/**
 * SECDED Hamming code over a 64-bit payload (72,64).
 *
 * Layout: 7 Hamming parity bits + 1 overall parity bit, the standard
 * DRAM sideband arrangement.
 */
class Secded64
{
  public:
    struct Word
    {
        std::uint64_t data = 0;
        std::uint8_t check = 0;  ///< 8 redundant bits
    };

    /** Encode a payload. */
    static Word encode(std::uint64_t data);

    /**
     * Decode in place, correcting a single flipped bit anywhere in
     * the 72-bit word (payload or check bits).
     */
    static EccStatus decode(Word &w);

    /** Flip one bit of the codeword (fault injection). @p pos < 72;
     *  positions 64..71 hit the check bits. */
    static void injectError(Word &w, unsigned pos);

  private:
    static std::uint8_t syndrome(const Word &w);
    static bool overallParity(const Word &w);
};

/**
 * SECDED over a 16-bit tag+metadata payload (22,16), stored in the
 * 8-bit tag-ECC budget of §III-C3.
 */
class SecdedTag
{
  public:
    struct Word
    {
        std::uint16_t data = 0;
        std::uint8_t check = 0;  ///< 6 used bits inside the 8-bit field
    };

    static Word encode(std::uint16_t data);
    static EccStatus decode(Word &w);

    /** @p pos < 22; positions 16..21 hit the check bits. */
    static void injectError(Word &w, unsigned pos);

  private:
    static std::uint8_t syndrome(const Word &w);
    static bool overallParity(const Word &w);
};

/**
 * Pack a TDRAM tag-store entry (paper's 1 PB / direct-mapped
 * example): 14-bit tag, valid, dirty.
 */
struct TagEntryBits
{
    std::uint16_t tag14 = 0;  ///< low 14 bits used
    bool valid = false;
    bool dirty = false;

    std::uint16_t
    pack() const
    {
        return static_cast<std::uint16_t>(
            (tag14 & 0x3fff) | (valid ? 0x4000 : 0) |
            (dirty ? 0x8000 : 0));
    }

    static TagEntryBits
    unpack(std::uint16_t bits)
    {
        TagEntryBits e;
        e.tag14 = bits & 0x3fff;
        e.valid = bits & 0x4000;
        e.dirty = bits & 0x8000;
        return e;
    }
};

} // namespace tsim

#endif // TSIM_TDRAM_ECC_HH
