/**
 * @file
 * TDRAM hardware-cost model: the signal-count table of Figure 4A and
 * the die-area estimate of §III-C5, expressed as computable
 * functions so the paper's overhead claims (192 extra pins, 9.7 %
 * more signals, 8.24 % die area) are reproducible artifacts rather
 * than constants.
 */

#ifndef TSIM_TDRAM_OVERHEAD_HH
#define TSIM_TDRAM_OVERHEAD_HH

namespace tsim
{

/** Signal counts for one memory-stack interface. */
struct InterfaceSignals
{
    unsigned channels = 0;       ///< independent channels
    unsigned dqPerChannel = 0;
    unsigned caPerChannel = 0;
    unsigned hmPerChannel = 0;   ///< TDRAM's hit-miss bus
    unsigned auxPerChannel = 0;  ///< clocks, strobes, ECC, ...
    unsigned globalSignals = 0;  ///< reset, IEEE1500, ...

    unsigned
    perChannel() const
    {
        return dqPerChannel + caPerChannel + hmPerChannel +
               auxPerChannel;
    }

    unsigned total() const
    {
        return channels * perChannel() + globalSignals;
    }
};

/**
 * Baseline HBM3 stack interface (JESD238-level accounting used by
 * the paper): 16 channels x 64 DQ split into two pseudo-channels,
 * 10b row + 8b column command buses, plus >650 channel/global
 * signals.
 */
InterfaceSignals hbm3Signals();

/**
 * TDRAM interface (Figure 4A): the 32 pseudo-channels become 32
 * independent channels, each with a 8b CA bus, a 4b HM bus, and 22
 * auxiliary signals; 52 global signals.
 */
InterfaceSignals tdramSignals();

/** Extra signals TDRAM adds over HBM3 (paper: 192 = 6 x 32). */
unsigned tdramExtraSignals();

/** Relative signal increase (paper: ~9.7 %). */
double tdramSignalIncrease();

/** Inputs to the §III-C5 die-area estimate. */
struct AreaModel
{
    /**
     * Area overhead of the tag mats relative to the data mats they
     * shadow. The paper scales mats by 1/2 in each dimension and
     * takes a pessimistic 24.3 % (Son et al. report 19 % for a 4x
     * aspect-ratio change).
     */
    double tagMatOverhead = 0.243;

    /** Tags live only in the even bank of each pair. */
    double evenBankFraction = 0.5;

    /** Banks occupy ~66 % of the HBM3 die (Park et al. die photo). */
    double bankAreaFraction = 0.66;

    /** Extra wiring (hit/miss routing to the odd banks). */
    double routingOverhead = 0.0022;

    /** Total die-area impact (paper: 8.24 %). */
    double
    dieAreaImpact() const
    {
        return tagMatOverhead * evenBankFraction * bankAreaFraction +
               routingOverhead;
    }
};

/**
 * Tag-storage capacity bookkeeping (§II-A, §III-C5): bytes of tag +
 * metadata for a given cache size (3 B per 64 B line), and the tag
 * width needed to map a physical address space.
 */
struct TagStorage
{
    /** Tag+metadata bytes for @p cache_bytes of data (3 B / 64 B). */
    static unsigned long long
    tagBytes(unsigned long long cache_bytes)
    {
        return cache_bytes / 64ULL * 3ULL;
    }

    /**
     * Tag bits for a direct-mapped cache of @p cache_bytes covering
     * @p address_space bytes (paper: 64 GiB cache + 1 PB space needs
     * 14 bits).
     */
    static unsigned
    tagBits(unsigned long long cache_bytes,
            unsigned long long address_space)
    {
        unsigned bits = 0;
        while ((cache_bytes << bits) < address_space)
            ++bits;
        return bits;
    }
};

} // namespace tsim

#endif // TSIM_TDRAM_OVERHEAD_HH
