#include "tdram/overhead.hh"

namespace tsim
{

InterfaceSignals
hbm3Signals()
{
    InterfaceSignals s;
    // 16 channels x (64 DQ + 10b R + 8b C); the remaining channel
    // and global functions (strobes, clocks, ECC, reset, IEEE1500,
    // ...) bring the stack to the paper's ~1972-signal baseline.
    s.channels = 16;
    s.dqPerChannel = 64;
    s.caPerChannel = 18;  // 10b row + 8b column
    s.hmPerChannel = 0;
    s.auxPerChannel = 38; // per-channel strobes/clocks/ECC
    s.globalSignals = 52;
    return s;
}

InterfaceSignals
tdramSignals()
{
    InterfaceSignals s;
    // Figure 4A: 32 independent 32-bit channels, each with an 8b CA
    // bus (2b more than half the shared HBM3 R+C), a 4b HM bus, and
    // 22 auxiliary signals; 52 global signals. Total 2164.
    s.channels = 32;
    s.dqPerChannel = 32;
    s.caPerChannel = 8;
    s.hmPerChannel = 4;
    s.auxPerChannel = 22;
    s.globalSignals = 52;
    return s;
}

unsigned
tdramExtraSignals()
{
    // The paper counts the signals beyond HBM3's bump map: 2b CA +
    // 4b HM per 32-bit channel (the HBM3 package has 320 unused
    // bump sites, enough for these 192).
    const InterfaceSignals t = tdramSignals();
    return t.channels * (2 + t.hmPerChannel);
}

double
tdramSignalIncrease()
{
    return static_cast<double>(tdramSignals().total()) /
               static_cast<double>(hbm3Signals().total()) -
           1.0;
}

} // namespace tsim
