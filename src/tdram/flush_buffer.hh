/**
 * @file
 * TDRAM's device-side flush buffer (paper §III-D2).
 *
 * On a write-miss-dirty, ActWr performs an internal read of the dirty
 * victim into this buffer before writing the new data, so no DQ-bus
 * turnaround or immediate victim transfer to the controller is
 * needed. Entries drain to the controller opportunistically (unused
 * read-miss-clean DQ slots, refresh windows) or via explicit drain
 * commands when the buffer is full.
 *
 * The controller has global knowledge of buffered addresses: demand
 * reads matching an entry are served from the buffer; demand writes
 * matching an entry supersede (remove) it.
 */

#ifndef TSIM_TDRAM_FLUSH_BUFFER_HH
#define TSIM_TDRAM_FLUSH_BUFFER_HH

#include <algorithm>
#include <cstdint>
#include <deque>

#include "mem/types.hh"
#include "stats/stats.hh"

namespace tsim
{

/** FIFO of dirty victim lines awaiting transfer to the controller. */
class FlushBuffer
{
  public:
    explicit FlushBuffer(unsigned capacity = 16) : _capacity(capacity) {}

    unsigned capacity() const { return _capacity; }

    /** Entries waiting to drain (excludes in-flight transfers). */
    unsigned size() const { return static_cast<unsigned>(_q.size()); }

    bool empty() const { return _q.empty(); }

    /**
     * A buffer slot is freed only once its drain transfer completes
     * at the controller, so in-flight entries still occupy capacity.
     */
    bool full() const { return _q.size() + _inFlight >= _capacity; }

    /** Mark one popped entry as in-flight on the DQ bus. */
    void beginDrain() { ++_inFlight; }

    /** Drain transfer landed at the controller; slot freed. */
    void
    completeDrain()
    {
        if (_inFlight > 0)
            --_inFlight;
    }

    unsigned inFlight() const { return _inFlight; }

    /**
     * Insert a victim line. @return false (and count a stall) if the
     * buffer is full — the caller must force a drain first.
     */
    bool
    push(Addr victim)
    {
        if (full()) {
            ++stalls;
            return false;
        }
        _q.push_back(victim);
#if TDRAM_STATS
        const std::uint64_t occ = _q.size() + _inFlight;
        occupancy.sample(static_cast<double>(occ));
        maxOccupancy = std::max<std::uint64_t>(
            static_cast<std::uint64_t>(maxOccupancy.value()), occ);
#endif
        return true;
    }

    /** Remove and return the oldest entry. Buffer must be non-empty. */
    Addr
    pop()
    {
        Addr a = _q.front();
        _q.pop_front();
        return a;
    }

    /** True if @p addr is currently buffered. */
    bool
    contains(Addr addr) const
    {
        return std::find(_q.begin(), _q.end(), addr) != _q.end();
    }

    /**
     * Remove a specific address (a newer demand write supersedes the
     * buffered dirty data). @return true if an entry was removed.
     */
    bool
    remove(Addr addr)
    {
        auto it = std::find(_q.begin(), _q.end(), addr);
        if (it == _q.end())
            return false;
        _q.erase(it);
        ++superseded;
        return true;
    }

    /** @name Statistics (paper §V-E). */
    /// @{
    Histogram occupancy{1.0, 80};   ///< sampled after each push
    Scalar maxOccupancy;            ///< high-water mark
    Scalar stalls;                  ///< pushes refused because full
    Scalar drainedOnMissClean;      ///< unloaded in read-miss-clean slots
    Scalar drainedOnRefresh;        ///< unloaded during refresh windows
    Scalar drainedForced;           ///< unloaded via explicit commands
    Scalar superseded;              ///< removed by a newer demand write
    /// @}

  private:
    unsigned _capacity;
    unsigned _inFlight = 0;
    std::deque<Addr> _q;
};

} // namespace tsim

#endif // TSIM_TDRAM_FLUSH_BUFFER_HH
