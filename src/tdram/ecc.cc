#include "tdram/ecc.hh"

namespace tsim
{

namespace
{

/**
 * Generic extended-Hamming SECDED machinery.
 *
 * Codeword positions are 1-indexed; parity bits sit at power-of-two
 * positions; data bits fill the rest in order. An overall parity bit
 * covers the whole codeword and disambiguates single from double
 * errors. The check field packs [hamming parities, overall] LSB
 * first.
 */
template <unsigned DataBits, unsigned ParityBits>
struct Hamming
{
    static constexpr unsigned codeBits = DataBits + ParityBits;

    static bool
    isPow2(unsigned v)
    {
        return v && !(v & (v - 1));
    }

    /** Spread payload bits into the codeword (parity slots zero). */
    static void
    place(std::uint64_t data, bool (&cw)[codeBits + 1])
    {
        unsigned d = 0;
        for (unsigned pos = 1; pos <= codeBits; ++pos) {
            if (isPow2(pos)) {
                cw[pos] = false;
            } else {
                cw[pos] = (data >> d) & 1;
                ++d;
            }
        }
    }

    /** Gather payload bits back out of the codeword. */
    static std::uint64_t
    gather(const bool (&cw)[codeBits + 1])
    {
        std::uint64_t data = 0;
        unsigned d = 0;
        for (unsigned pos = 1; pos <= codeBits; ++pos) {
            if (!isPow2(pos)) {
                if (cw[pos])
                    data |= 1ULL << d;
                ++d;
            }
        }
        return data;
    }

    static unsigned
    computeSyndrome(const bool (&cw)[codeBits + 1])
    {
        unsigned s = 0;
        for (unsigned pos = 1; pos <= codeBits; ++pos) {
            if (cw[pos])
                s ^= pos;
        }
        return s;
    }

    static std::uint8_t
    encode(std::uint64_t data, bool &overall)
    {
        bool cw[codeBits + 1] = {};
        place(data, cw);
        const unsigned s = computeSyndrome(cw);
        // Setting parity bit p makes the total syndrome zero.
        std::uint8_t parities = 0;
        unsigned idx = 0;
        for (unsigned pos = 1; pos <= codeBits; pos <<= 1) {
            if (s & pos) {
                cw[pos] = true;
                parities |= std::uint8_t(1u << idx);
            }
            ++idx;
        }
        bool par = false;
        for (unsigned pos = 1; pos <= codeBits; ++pos)
            par ^= cw[pos];
        overall = par;
        return parities;
    }

    /**
     * @param data    In/out payload.
     * @param check   In/out packed [parities..., overall] field.
     * @return status after potential correction.
     */
    static EccStatus
    decode(std::uint64_t &data, std::uint8_t &check)
    {
        bool cw[codeBits + 1] = {};
        place(data, cw);
        unsigned idx = 0;
        for (unsigned pos = 1; pos <= codeBits; pos <<= 1) {
            cw[pos] = (check >> idx) & 1;
            ++idx;
        }
        const bool stored_overall = (check >> idx) & 1;

        const unsigned syndrome = computeSyndrome(cw);
        bool par = stored_overall;
        for (unsigned pos = 1; pos <= codeBits; ++pos)
            par ^= cw[pos];
        // par == true means the overall parity check fails.

        if (syndrome == 0 && !par)
            return EccStatus::Ok;
        if (syndrome == 0 && par) {
            // The overall parity bit itself flipped.
            check ^= std::uint8_t(1u << idx);
            return EccStatus::Corrected;
        }
        if (!par)
            return EccStatus::Uncorrectable;  // double error
        if (syndrome > codeBits)
            return EccStatus::Uncorrectable;

        // Single error at codeword position `syndrome`: fix it.
        cw[syndrome] = !cw[syndrome];
        data = gather(cw);
        unsigned j = 0;
        std::uint8_t parities = 0;
        for (unsigned pos = 1; pos <= codeBits; pos <<= 1) {
            if (cw[pos])
                parities |= std::uint8_t(1u << j);
            ++j;
        }
        check = static_cast<std::uint8_t>(
            parities | (stored_overall ? (1u << j) : 0));
        return EccStatus::Corrected;
    }
};

using Ham64 = Hamming<64, 7>;
using Ham16 = Hamming<16, 5>;

} // namespace

Secded64::Word
Secded64::encode(std::uint64_t data)
{
    Word w;
    w.data = data;
    bool overall = false;
    const std::uint8_t parities = Ham64::encode(data, overall);
    w.check = static_cast<std::uint8_t>(parities |
                                        (overall ? (1u << 7) : 0));
    return w;
}

EccStatus
Secded64::decode(Word &w)
{
    std::uint64_t data = w.data;
    std::uint8_t check = w.check;
    const EccStatus st = Ham64::decode(data, check);
    w.data = data;
    w.check = check;
    return st;
}

void
Secded64::injectError(Word &w, unsigned pos)
{
    if (pos < 64)
        w.data ^= 1ULL << pos;
    else
        w.check ^= std::uint8_t(1u << (pos - 64));
}

SecdedTag::Word
SecdedTag::encode(std::uint16_t data)
{
    Word w;
    w.data = data;
    bool overall = false;
    const std::uint8_t parities = Ham16::encode(data, overall);
    w.check = static_cast<std::uint8_t>(parities |
                                        (overall ? (1u << 5) : 0));
    return w;
}

EccStatus
SecdedTag::decode(Word &w)
{
    std::uint64_t data = w.data;
    std::uint8_t check = w.check;
    const EccStatus st = Ham16::decode(data, check);
    w.data = static_cast<std::uint16_t>(data);
    w.check = check;
    return st;
}

void
SecdedTag::injectError(Word &w, unsigned pos)
{
    if (pos < 16)
        w.data ^= std::uint16_t(1u << pos);
    else
        w.check ^= std::uint8_t(1u << (pos - 16));
}

} // namespace tsim
