/**
 * @file
 * Activity-based DRAM energy model (paper §V-C).
 *
 * The paper builds an HBM3 power model by scaling HBM2 data [55] and
 * notes that moving data between the DRAM core and the controller
 * dominates (62.6 % of HBM2 power [10]). We reproduce that structure
 * with per-event energies applied to the simulator's activity
 * counters: data-bank activates, tag-mat activates, DQ bytes moved,
 * HM-bus packets, refreshes, plus background power x runtime.
 * Absolute joules depend on the (substituted) constants; the
 * *relative* energies of the designs (Fig 13) depend on activity
 * ratios, which the simulation produces directly.
 */

#ifndef TSIM_ENERGY_ENERGY_HH
#define TSIM_ENERGY_ENERGY_HH

#include "dcache/dram_cache.hh"
#include "dram/main_memory.hh"
#include "sim/ticks.hh"

namespace tsim
{

/** Per-event energies and background powers. */
struct EnergyParams
{
    // --- DRAM cache (HBM3-like) ---
    double eActDataJ = 0.9e-9;    ///< per paired-bank data activate
    double eActTagJ = 0.12e-9;    ///< per tag-mat activate (small mats)
    double eDqPerByteJ = 30e-12;  ///< core+interface transfer energy
    double eHmPacketJ = 0.05e-9;  ///< 3 B result on the 4-bit HM bus
    double eRefreshJ = 30e-9;     ///< per all-bank refresh per channel
    double pBackgroundW = 0.08;   ///< per cache channel

    // --- Main memory (DDR5) ---
    double eMmActJ = 1.7e-9;
    double eMmPerByteJ = 45e-12;
    double eMmRefreshJ = 50e-9;
    double pMmBackgroundW = 0.15; ///< per main-memory channel
};

/** Energy totals split by source. */
struct EnergyBreakdown
{
    double cacheActJ = 0;
    double cacheTagJ = 0;
    double cacheDqJ = 0;
    double cacheHmJ = 0;
    double cacheRefreshJ = 0;
    double cacheBackgroundJ = 0;
    double mmDynamicJ = 0;
    double mmRefreshJ = 0;
    double mmBackgroundJ = 0;

    double
    cacheJ() const
    {
        return cacheActJ + cacheTagJ + cacheDqJ + cacheHmJ +
               cacheRefreshJ + cacheBackgroundJ;
    }

    double mmJ() const { return mmDynamicJ + mmRefreshJ + mmBackgroundJ; }
    double totalJ() const { return cacheJ() + mmJ(); }
};

/** Evaluate the model over a finished run of @p runtime ticks. */
EnergyBreakdown
computeEnergy(const DramCacheCtrl &dcache, const MainMemory &mm,
              Tick runtime, const EnergyParams &p = EnergyParams{});

} // namespace tsim

#endif // TSIM_ENERGY_ENERGY_HH
