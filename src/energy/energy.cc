#include "energy/energy.hh"

namespace tsim
{

EnergyBreakdown
computeEnergy(const DramCacheCtrl &dcache, const MainMemory &mm,
              Tick runtime, const EnergyParams &p)
{
    EnergyBreakdown e;
    const double seconds = static_cast<double>(runtime) * 1e-12;

    for (unsigned c = 0; c < dcache.numChannels(); ++c) {
        const DramChannel &ch = dcache.channel(c);
        e.cacheActJ += ch.dataBankActs.value() * p.eActDataJ;
        e.cacheTagJ += ch.tagBankActs.value() * p.eActTagJ;
        e.cacheDqJ += (ch.bytesToCtrl.value() +
                       ch.bytesFromCtrl.value()) *
                      p.eDqPerByteJ;
        // Every ActRd/ActWr/probe returns a result packet on the HM
        // bus (conventional designs have none of these).
        e.cacheHmJ += (ch.issuedActRd.value() + ch.issuedActWr.value() +
                       ch.probesIssued.value()) *
                      p.eHmPacketJ;
        e.cacheRefreshJ += ch.refreshes.value() * p.eRefreshJ;
        e.cacheBackgroundJ += p.pBackgroundW * seconds;
    }

    for (unsigned c = 0; c < mm.numChannels(); ++c) {
        const DramChannel &ch = mm.channel(c);
        e.mmDynamicJ += ch.dataBankActs.value() * p.eMmActJ +
                        (ch.bytesToCtrl.value() +
                         ch.bytesFromCtrl.value()) *
                            p.eMmPerByteJ;
        e.mmRefreshJ += ch.refreshes.value() * p.eMmRefreshJ;
        e.mmBackgroundJ += p.pMmBackgroundW * seconds;
    }
    return e;
}

} // namespace tsim
